#pragma once

// Pluggable egress queueing disciplines.
//
// A Qdisc is what a Port consumes instead of a hardcoded drop-tail queue:
// the base class owns admission (packet/byte limits plus the shared-memory
// Dynamic-Threshold pool), byte/packet accounting and the counters the
// stats layer reads (ECN marks, peak occupancy); implementations only
// store and retrieve packets.  Three disciplines ship today:
//
//   * DropTailQueue (net/queue.h) — the paper's baseline FIFO;
//   * EcnRedQueue — threshold ECN marking (DCTCP-style CE at K);
//   * StrictPriorityQdisc — multi-band mice/elephant separation
//     (pFabric/QJUMP-flavoured, pluggable classifier).
//
// make_qdisc() builds one from a declarative QdiscConfig, which topology
// builders carry per link so experiments can sweep the discipline.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.h"
#include "sim/time.h"

namespace mmptcp {

class Scheduler;
class SharedBufferPool;

/// Limits for an egress queue; either bound may be disabled with 0.
struct QueueLimits {
  std::uint32_t max_packets = 100;  ///< 0 = unlimited
  std::uint64_t max_bytes = 0;      ///< 0 = unlimited
};

/// Abstract queueing discipline for one egress port.
class Qdisc {
 public:
  /// A discipline that does NOT override admits() may pass
  /// `uses_default_admission = true` to skip the per-packet virtual
  /// dispatch on the admission test.  The flag is opt-in so forgetting
  /// it merely costs the indirect call — it can never silently bypass a
  /// subclass's admission policy.
  Qdisc(QueueLimits limits, SharedBufferPool* pool,
        bool uses_default_admission = false);
  virtual ~Qdisc() = default;

  Qdisc(const Qdisc&) = delete;
  Qdisc& operator=(const Qdisc&) = delete;

  /// Attempts to enqueue; returns false (drop) when admission fails.
  /// The discipline may modify the stored packet (ECN marking).
  bool try_push(Packet pkt);

  /// Writes the next packet to serialise into `out`; false when empty.
  /// This is the transmitter's hot path: no optional is materialised.
  bool pop_into(Packet& out);

  /// Removes and returns the next packet to serialise; nullopt when empty.
  std::optional<Packet> pop();

  bool empty() const { return packets_ == 0; }
  std::size_t size_packets() const { return packets_; }
  std::uint64_t size_bytes() const { return bytes_; }
  const QueueLimits& limits() const { return limits_; }

  /// Packets CE-marked by this discipline (EcnRedQueue only today).
  std::uint64_t marked_packets() const { return marked_; }
  /// Highest instantaneous occupancy ever reached, in packets.
  std::uint64_t peak_packets() const { return peak_packets_; }
  /// When peak_packets() was first reached; zero until the queue has a
  /// clock (Port installs one) and has admitted a packet.
  Time peak_at() const { return peak_at_; }

  /// Gives the queue a clock so peak occupancy can be timestamped.  May
  /// stay unset (directly-constructed test queues): peak_at() reads zero.
  void set_clock(const Scheduler* clock) { clock_ = clock; }

 protected:
  /// Admission test beyond the pool check (default: shared limits over
  /// the whole queue; StrictPriorityQdisc overrides with per-band limits).
  virtual bool admits(const Packet& pkt) const;

  /// Stores an admitted packet (may mark it first).
  virtual void do_push(Packet&& pkt) = 0;

  /// Retrieves the next packet; called only when non-empty.
  virtual Packet do_pop() = 0;

  /// Implementations call this when they set CE on a packet.
  void note_marked() { ++marked_; }

 private:
  QueueLimits limits_;
  SharedBufferPool* pool_;  // not owned; may be null
  std::size_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t marked_ = 0;
  std::uint64_t peak_packets_ = 0;
  const Scheduler* clock_ = nullptr;  // not owned; may stay null
  Time peak_at_;
  bool uses_default_admission_;
};

/// Which discipline a port runs.
enum class QdiscKind : std::uint8_t {
  kDropTail,  ///< FIFO, drop arrivals when full (the paper's baseline)
  kEcnRed,    ///< FIFO + threshold CE marking of ECT arrivals (DCTCP's K)
  kPriority,  ///< strict-priority bands, mice classified into the top band
};

std::string to_string(QdiscKind kind);
/// Parses "droptail", "ecn" / "red", "prio" / "priority".
QdiscKind qdisc_kind_from_string(const std::string& s);

/// How StrictPriorityQdisc maps a packet to a band.
enum class PrioClassifierKind : std::uint8_t {
  kPsFlag,     ///< PS-phase (sprayed) and control packets -> top band
  kBytesSent,  ///< band grows with stream offset (LAS/pFabric proxy)
};

/// Declarative description of one port's discipline (see make_qdisc).
struct QdiscConfig {
  QdiscKind kind = QdiscKind::kDropTail;
  // --- kEcnRed ---
  /// Mark an ECT arrival when the queue already holds >= this many
  /// packets (DCTCP's instantaneous threshold K).
  std::uint32_t ecn_threshold_packets = 20;
  /// Byte-mode threshold alongside the packet one: also mark when the
  /// queue already holds >= this many bytes.  Real switches provision K
  /// in bytes, and a packet count misjudges the drain time of a queue
  /// of small segments (ACKs, runts).  0 disables (default: packet mode
  /// only, the historical behaviour).
  std::uint64_t ecn_threshold_bytes = 0;
  // --- kPriority ---
  std::uint32_t bands = 2;  ///< >= 2; band 0 is served first
  PrioClassifierKind classifier = PrioClassifierKind::kPsFlag;
  /// kBytesSent: stream bytes per band (data_seq / this, clamped).
  std::uint64_t band_bytes = 100 * 1024;
};

/// Builds the configured discipline over `limits` (+ optional DT pool).
std::unique_ptr<Qdisc> make_qdisc(const QdiscConfig& config,
                                  QueueLimits limits, SharedBufferPool* pool);

}  // namespace mmptcp
