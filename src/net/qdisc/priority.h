#pragma once

// Strict-priority bands for mice/elephant separation.
//
// The in-network alternative the paper positions MMPTCP against (DiffFlow,
// pFabric, QJUMP): short-flow packets are classified into a high-priority
// band so they never wait behind an elephant's standing queue.  Bands are
// served strictly in index order.  Buffering is priority-aware but
// capacity-neutral: the whole port is bounded by the configured limits —
// the *total* buffer matches a drop-tail port, so qdisc comparisons
// isolate scheduling from capacity — while every band below the top one
// is additionally capped at an even share of those limits.  Elephants
// therefore cannot squeeze the mice out of the buffer (priority
// *dropping* as well as priority scheduling), yet mice may use the whole
// port when the low bands are idle.
//
// The classifier is pluggable: the default keys on the PS-phase flag that
// MMPTCP's packet-scatter subflow stamps on every sprayed segment (plus
// control packets); the bytes-sent classifier approximates
// least-attained-service by bucketing on the connection-level stream
// offset, so any transport's young (short) flows ride the top band.

#include <functional>
#include <vector>

#include "net/qdisc/packet_ring.h"
#include "net/qdisc/qdisc.h"

namespace mmptcp {

/// Multi-band strict-priority discipline.
class StrictPriorityQdisc final : public Qdisc {
 public:
  /// Maps a packet to a band; results are clamped to [0, bands).
  using Classifier = std::function<std::size_t(const Packet&)>;

  /// `limits` bounds the whole port; bands below the top one are each
  /// additionally capped at an even share of it (at least one packet).
  StrictPriorityQdisc(QueueLimits limits, std::uint32_t bands,
                      Classifier classify, SharedBufferPool* pool = nullptr);

  /// The per-band cap applied to every band except band 0.
  const QueueLimits& band_limits() const { return band_limits_; }

  std::size_t band_count() const { return bands_.size(); }
  std::size_t band_packets(std::size_t band) const;
  std::uint64_t band_bytes(std::size_t band) const;

  /// PS-phase and control (non-data) packets -> band 0; data without the
  /// PS flag -> the lowest band.
  static Classifier ps_flag_classifier(std::uint32_t bands);

  /// Band = stream offset / band_bytes (clamped): packets early in a
  /// stream — every packet of a short flow — keep the top band, while a
  /// long flow descends one band per `band_bytes` sent.
  static Classifier bytes_sent_classifier(std::uint32_t bands,
                                          std::uint64_t band_bytes);

 protected:
  bool admits(const Packet& pkt) const override;
  void do_push(Packet&& pkt) override;
  Packet do_pop() override;

 private:
  std::size_t band_of(const Packet& pkt) const;

  Classifier classify_;
  QueueLimits band_limits_;  ///< the port limits divided across bands
  std::vector<PacketRing> bands_;
  std::vector<std::uint64_t> bytes_per_band_;
};

}  // namespace mmptcp
