#pragma once

// Ring buffer of packets for qdisc storage.
//
// Queues on the packet hot path previously used std::deque, which
// allocates and frees a chunk every few packets as the queue level
// oscillates around a chunk boundary.  PacketRing keeps a power-of-two
// circular array that only ever grows, so a warmed-up port enqueues and
// dequeues with zero allocation.

#include <cstddef>
#include <vector>

#include "net/packet.h"
#include "util/check.h"

namespace mmptcp {

/// FIFO ring of packets; grows by doubling, never shrinks.
class PacketRing {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  const Packet& front() const {
    check(size_ > 0, "front() on an empty packet ring");
    return slots_[head_];
  }

  void push_back(const Packet& pkt) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & (slots_.size() - 1)] = pkt;
    ++size_;
  }

  Packet pop_front() {
    check(size_ > 0, "pop_front() on an empty packet ring");
    const Packet pkt = slots_[head_];
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
    return pkt;
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Packet> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = slots_[(head_ + i) & (slots_.size() - 1)];
    }
    slots_.swap(next);
    head_ = 0;
  }

  std::vector<Packet> slots_;  ///< capacity is always a power of two
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mmptcp
