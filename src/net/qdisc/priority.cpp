#include "net/qdisc/priority.h"

#include <algorithm>

#include "util/check.h"

namespace mmptcp {

StrictPriorityQdisc::StrictPriorityQdisc(QueueLimits limits,
                                         std::uint32_t bands,
                                         Classifier classify,
                                         SharedBufferPool* pool)
    : Qdisc(limits, pool), classify_(std::move(classify)), bands_(bands),
      bytes_per_band_(bands, 0) {
  require(bands >= 2, "priority qdisc needs at least two bands");
  require(static_cast<bool>(classify_), "priority qdisc needs a classifier");
  // Equal static partition of the port buffer (0 stays unlimited).
  band_limits_.max_packets =
      limits.max_packets == 0
          ? 0
          : std::max<std::uint32_t>(limits.max_packets / bands, 1);
  band_limits_.max_bytes =
      limits.max_bytes == 0
          ? 0
          : std::max<std::uint64_t>(limits.max_bytes / bands, 1);
}

std::size_t StrictPriorityQdisc::band_of(const Packet& pkt) const {
  return std::min(classify_(pkt), bands_.size() - 1);
}

std::size_t StrictPriorityQdisc::band_packets(std::size_t band) const {
  return bands_.at(band).size();
}

std::uint64_t StrictPriorityQdisc::band_bytes(std::size_t band) const {
  return bytes_per_band_.at(band);
}

bool StrictPriorityQdisc::admits(const Packet& pkt) const {
  // Whole-port bound first: total capacity parity with drop-tail.
  if (!Qdisc::admits(pkt)) return false;
  // Bands below the top one are capped at their share, so a standing
  // elephant queue cannot occupy the buffer the mice burst needs.
  const std::size_t band = band_of(pkt);
  if (band == 0) return true;
  if (band_limits_.max_packets != 0 &&
      bands_[band].size() >= band_limits_.max_packets) {
    return false;
  }
  if (band_limits_.max_bytes != 0 &&
      bytes_per_band_[band] + pkt.size_bytes() > band_limits_.max_bytes) {
    return false;
  }
  return true;
}

void StrictPriorityQdisc::do_push(Packet&& pkt) {
  const std::size_t band = band_of(pkt);
  bytes_per_band_[band] += pkt.size_bytes();
  bands_[band].push_back(pkt);
}

Packet StrictPriorityQdisc::do_pop() {
  for (std::size_t band = 0; band < bands_.size(); ++band) {
    if (bands_[band].empty()) continue;
    const Packet pkt = bands_[band].pop_front();
    bytes_per_band_[band] -= pkt.size_bytes();
    return pkt;
  }
  check(false, "do_pop on an empty priority qdisc");
  return Packet{};
}

StrictPriorityQdisc::Classifier StrictPriorityQdisc::ps_flag_classifier(
    std::uint32_t bands) {
  return [bands](const Packet& pkt) -> std::size_t {
    if (!pkt.is_data() || pkt.has(pkt_flags::kPs)) return 0;
    return bands - 1;
  };
}

StrictPriorityQdisc::Classifier StrictPriorityQdisc::bytes_sent_classifier(
    std::uint32_t bands, std::uint64_t band_bytes) {
  require(band_bytes > 0, "bytes-sent classifier needs a positive band size");
  return [bands, band_bytes](const Packet& pkt) -> std::size_t {
    if (!pkt.is_data()) return 0;
    return static_cast<std::size_t>(std::min<std::uint64_t>(
        pkt.data_seq / band_bytes, bands - 1));
  };
}

}  // namespace mmptcp
