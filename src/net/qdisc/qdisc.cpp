#include "net/qdisc/qdisc.h"

#include "net/qdisc/ecn_red.h"
#include "net/qdisc/priority.h"
#include "net/queue.h"
#include "sim/scheduler.h"
#include "util/check.h"

namespace mmptcp {

Qdisc::Qdisc(QueueLimits limits, SharedBufferPool* pool,
             bool uses_default_admission)
    : limits_(limits), pool_(pool),
      uses_default_admission_(uses_default_admission) {}

bool Qdisc::admits(const Packet& pkt) const {
  if (limits_.max_packets != 0 && packets_ >= limits_.max_packets) {
    return false;
  }
  if (limits_.max_bytes != 0 && bytes_ + pkt.size_bytes() > limits_.max_bytes) {
    return false;
  }
  return true;
}

bool Qdisc::try_push(Packet pkt) {
  const std::uint32_t size = pkt.size_bytes();
  if (uses_default_admission_ ? !Qdisc::admits(pkt) : !admits(pkt)) {
    return false;
  }
  if (pool_ != nullptr && !pool_->admits(bytes_, size)) return false;
  do_push(std::move(pkt));
  ++packets_;
  bytes_ += size;
  if (packets_ > peak_packets_) {
    // Strictly-greater: peak_at_ records when the peak was FIRST reached,
    // not the last revisit of the same depth.
    peak_packets_ = packets_;
    if (clock_ != nullptr) peak_at_ = clock_->now();
  }
  if (pool_ != nullptr) pool_->on_enqueue(size);
  return true;
}

bool Qdisc::pop_into(Packet& out) {
  if (packets_ == 0) return false;
  out = do_pop();
  --packets_;
  bytes_ -= out.size_bytes();
  if (pool_ != nullptr) pool_->on_dequeue(out.size_bytes());
  return true;
}

std::optional<Packet> Qdisc::pop() {
  std::optional<Packet> pkt(std::in_place);
  if (!pop_into(*pkt)) pkt.reset();
  return pkt;
}

std::string to_string(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kDropTail: return "droptail";
    case QdiscKind::kEcnRed: return "ecn";
    case QdiscKind::kPriority: return "prio";
  }
  return "?";
}

QdiscKind qdisc_kind_from_string(const std::string& s) {
  if (s == "droptail" || s == "drop-tail" || s == "fifo") {
    return QdiscKind::kDropTail;
  }
  if (s == "ecn" || s == "red") return QdiscKind::kEcnRed;
  if (s == "prio" || s == "priority") return QdiscKind::kPriority;
  throw ConfigError("unknown qdisc kind: " + s +
                    " (valid: droptail, ecn, prio)");
}

std::unique_ptr<Qdisc> make_qdisc(const QdiscConfig& config,
                                  QueueLimits limits, SharedBufferPool* pool) {
  switch (config.kind) {
    case QdiscKind::kDropTail:
      return std::make_unique<DropTailQueue>(limits, pool);
    case QdiscKind::kEcnRed:
      return std::make_unique<EcnRedQueue>(limits,
                                           config.ecn_threshold_packets, pool,
                                           config.ecn_threshold_bytes);
    case QdiscKind::kPriority: {
      StrictPriorityQdisc::Classifier classify =
          config.classifier == PrioClassifierKind::kPsFlag
              ? StrictPriorityQdisc::ps_flag_classifier(config.bands)
              : StrictPriorityQdisc::bytes_sent_classifier(config.bands,
                                                           config.band_bytes);
      return std::make_unique<StrictPriorityQdisc>(
          limits, config.bands, std::move(classify), pool);
    }
  }
  throw ConfigError("unhandled qdisc kind");
}

}  // namespace mmptcp
