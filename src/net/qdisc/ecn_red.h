#pragma once

// Threshold ECN marking (the RED configuration DCTCP prescribes).
//
// DCTCP sets RED's min and max thresholds to the same value K and marks
// on *instantaneous* queue length, so the switch degenerates to a simple
// rule: an ECN-capable (ECT) arrival is CE-marked when the queue already
// holds at least K packets — or, when the byte-mode threshold is
// enabled, at least K_bytes bytes (real switches provision K in bytes;
// either bound marks).  Non-ECT traffic is unaffected — it only drops
// when the drop-tail limits are exceeded, exactly as before.

#include "net/qdisc/packet_ring.h"
#include "net/qdisc/qdisc.h"

namespace mmptcp {

/// FIFO with DCTCP-style threshold CE marking of ECT arrivals.
class EcnRedQueue final : public Qdisc {
 public:
  /// `mark_threshold_bytes` == 0 disables byte-mode marking (packet
  /// threshold only, the historical behaviour).
  EcnRedQueue(QueueLimits limits, std::uint32_t mark_threshold_packets,
              SharedBufferPool* pool = nullptr,
              std::uint64_t mark_threshold_bytes = 0);

  std::uint32_t mark_threshold_packets() const { return threshold_; }
  std::uint64_t mark_threshold_bytes() const { return threshold_bytes_; }

 protected:
  void do_push(Packet&& pkt) override;
  Packet do_pop() override;

 private:
  std::uint32_t threshold_;
  std::uint64_t threshold_bytes_;  ///< 0 = byte mode off
  PacketRing packets_;
};

}  // namespace mmptcp
