#pragma once

// Packet tap: observe (or selectively drop) every packet offered to a
// Port.  Built on the port's drop-filter hook, so a tap sees each packet
// before admission — including ones the queue would reject.  Promoted
// from the test suite because debugging rigs and example programs want
// the same instrument; an observe-only tap never perturbs the run.

#include <functional>
#include <utility>
#include <vector>

#include "net/link.h"
#include "net/packet.h"

namespace mmptcp {

/// Records every packet offered to a Port; optionally drops by predicate.
class PacketTap {
 public:
  /// Attaches to `port`; `drop` may be null (observe only).  The tap
  /// must outlive the port's traffic — it replaces the port's drop
  /// filter with one holding `this`.
  explicit PacketTap(Port& port,
                     std::function<bool(const Packet&)> drop = nullptr) {
    port.set_drop_filter([this, drop = std::move(drop)](
                             const Packet& pkt, std::uint64_t /*index*/) {
      seen_.push_back(pkt);
      return drop ? drop(pkt) : false;
    });
  }

  const std::vector<Packet>& seen() const { return seen_; }
  std::size_t count() const { return seen_.size(); }

 private:
  std::vector<Packet> seen_;
};

}  // namespace mmptcp
