#pragma once

// Base class for anything attached to the network (hosts and switches).
//
// A node owns its egress ports (ingress is implicit: channels deliver
// straight into receive()).  Ports are held by unique_ptr so their
// addresses stay stable as ports are added during topology construction.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulation.h"

namespace mmptcp {

using NodeId = std::uint32_t;

/// A device with egress ports that can receive packets.
class Node {
 public:
  Node(Simulation& sim, NodeId id, std::string name);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Handles a packet arriving on ingress `in_port`.
  virtual void receive(Packet pkt, std::size_t in_port) = 0;

  /// Appends an egress port; returns its index.  `qdisc` selects the
  /// queueing discipline (drop-tail by default).
  std::size_t add_port(std::uint64_t rate_bps, QueueLimits limits,
                       Channel* out, LinkLayer layer,
                       SharedBufferPool* pool = nullptr,
                       QdiscConfig qdisc = QdiscConfig{});

  /// Execution domain for parallel runs.  Builders tag every node right
  /// after creation and before its ports are wired: add_port() binds the
  /// port's transmitter to the domain's scheduler.  Defaults to 0, which
  /// is the control scheduler while domains are unconfigured.
  void set_domain(std::size_t d) { domain_ = d; canonical_domain_ = d; }
  std::size_t domain() const { return domain_; }

  /// Granularity-invariant decomposition id: the finest (edge-level)
  /// domain this node would belong to, regardless of which execution
  /// granularity the run actually uses.  Canonical flush ordering and
  /// metric grouping key on this instead of domain(), which is what
  /// makes results byte-identical across granularities.  Builders that
  /// support multiple granularities tag it right after set_domain()
  /// (which defaults it to the execution domain, the correct value for
  /// single-granularity topologies).
  void set_canonical_domain(std::size_t d) { canonical_domain_ = d; }
  std::size_t canonical_domain() const { return canonical_domain_; }

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  std::size_t port_count() const { return ports_.size(); }
  Port& port(std::size_t i) { return *ports_.at(i); }
  const Port& port(std::size_t i) const { return *ports_.at(i); }

 protected:
  Simulation& sim() { return sim_; }
  const Simulation& sim() const { return sim_; }

 private:
  Simulation& sim_;
  NodeId id_;
  std::string name_;
  std::size_t domain_ = 0;
  std::size_t canonical_domain_ = 0;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace mmptcp
