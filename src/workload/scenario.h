#pragma once

// The paper's evaluation scenario, as described in the Figure 1 caption:
//
//   "a simulated 4:1 over-subscribed FatTree topology ... One third of the
//    servers run long (background) flows.  The rest run short flows (70KBs
//    each) which are scheduled according to a Poisson process.  All flows
//    are scheduled based on a permutation traffic matrix."
//
// Scenario builds the topology, assigns host roles, starts long background
// flows, generates Poisson short-flow arrivals, runs to completion, and
// exposes the measurements every bench needs (FCT summaries, per-layer
// loss rates, long-flow goodput, network utilisation).  The roadmap's
// hotspot experiment is a knob (a fraction of shorts is redirected at one
// rack), as is the dual-homed topology.

#include <map>
#include <memory>

#include "core/transport_factory.h"
#include "sim/engine.h"
#include "stats/link_stats.h"
#include "topo/dual_homed.h"
#include "topo/fat_tree.h"
#include "trace/recorder.h"
#include "trace/sampler.h"
#include "workload/apps.h"
#include "workload/arrivals.h"
#include "workload/size_dist.h"
#include "workload/traffic_matrix.h"

namespace mmptcp {

/// Full description of one simulation run.
struct ScenarioConfig {
  // --- topology (FatTree by default; dual-homed for the roadmap bench) ---
  FatTreeConfig fat_tree{.k = 4, .oversubscription = 4};
  bool dual_homed = false;
  DualHomedConfig dual{.k = 4, .oversubscription = 4};

  // --- transport under test (applies to long and short flows alike) ---
  TransportConfig transport{};
  /// Optional override for long (background) flows, enabling controlled
  /// experiments that vary only the short-flow transport.
  std::optional<TransportConfig> long_transport{};

  // --- roles & workload ---
  double long_host_fraction = 1.0 / 3.0;
  bool start_long_flows = true;
  Time long_start_spread = Time::millis(100);
  std::uint32_t short_flow_count = 2000;   ///< stop after this many shorts
  double short_rate_per_host = 8.0;        ///< Poisson arrivals/s per host
  std::uint64_t short_flow_bytes = 70 * 1024;
  /// Optional size distribution for shorts (overrides short_flow_bytes).
  std::shared_ptr<SizeDistribution> short_sizes;
  /// Fraction of short flows redirected at rack (pod 0, edge 0) — the
  /// roadmap's hotspot experiment.  0 disables.
  double hotspot_fraction = 0.0;

  // --- control ---
  std::uint64_t seed = 1;
  /// Worker threads for domain-parallel event execution.  FatTree runs
  /// always decompose into domains (granularity set by
  /// fat_tree.domain_granularity: per-pod or per-edge-switch) executed
  /// in conservative lookahead windows (see sim/engine.h); this only
  /// sets how many threads run the window, so the main results are
  /// byte-identical at any value and at either granularity.  0 means
  /// auto: hardware_concurrency, clamped (loudly) to the domain count.
  /// Forced to 1 when tracing (identical schedule either way) and for
  /// dual-homed topologies (no decomposition yet).
  unsigned sim_threads = 1;
  Time max_sim_time = Time::seconds(120);
  Time check_interval = Time::millis(50);
  Time server_linger = Time::seconds(20);  ///< server endpoint GC delay
  std::uint16_t port = 5001;

  // --- observability ---
  /// Flight recorder; when trace.enabled() the scenario opens a recorder
  /// at trace.path and wires it through the simulation.
  TraceConfig trace{};
  /// Component logger root (default: disabled).
  Logger logger{};
  /// When false the run skips materialising per-flow FCT samples for the
  /// exact Summary percentiles and reports only the O(1) streaming
  /// sketches (see FlowSketches).  It also switches Metrics into
  /// streaming mode: completed short flows retire — their counters fold
  /// into RetiredTotals and their record slots are recycled once the
  /// server endpoint is gone — so memory stays O(live flows) at any
  /// short_flow_count.  Results are byte-identical to an exact_stats run
  /// for every sketch-derived metric (flow ids are invisible to the
  /// simulation).  Specs that gate exact values keep the default.
  bool exact_stats = true;
};

/// Builds and runs one scenario; query results afterwards.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Runs until every short flow completed (checked periodically) or
  /// max_sim_time, whichever first.
  void run();

  // ---- accessors ----
  Simulation& sim() { return sim_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  Network& network() { return *net_; }
  const PathOracle& oracle() const;
  FatTree* fat_tree() { return ft_.get(); }
  std::size_t host_count() const { return net_->host_count(); }
  Time end_time() const { return end_time_; }
  std::uint32_t shorts_started() const {
    std::uint32_t n = 0;
    for (std::uint32_t c : shorts_by_role_) n += c;
    return n;
  }
  /// Parallel decomposition actually used: >1 when the run executes in
  /// domain windows (the conservative window width is lookahead()).
  std::size_t domain_count() const { return domains_; }
  /// Canonical (granularity-invariant) host groups: one per edge switch
  /// when decomposed, 1 when serial.  Flow ownership and metric shards
  /// key on these, never on execution domains.
  std::size_t host_group_count() const { return host_groups_; }
  Time lookahead() const { return lookahead_; }
  /// Worker threads the last run() actually used (after auto-resolution
  /// and domain clamping); 0 before run().
  unsigned workers_used() const { return workers_used_; }
  /// Engine scheduling telemetry from the last run() (all zeros for
  /// serial runs or before run()).  Timing sidecar only: machine- and
  /// thread-count-dependent, never part of the main results.
  const EngineStats& engine_stats() const { return engine_stats_; }
  const std::vector<std::size_t>& permutation() const { return perm_; }
  const std::vector<std::size_t>& long_hosts() const { return long_hosts_; }

  // ---- result helpers ----
  Summary short_fct_ms() const;
  Summary long_goodput_mbps() const;
  std::map<LinkLayer, LayerStats> layer_stats() const;
  /// Goodput of all flows divided by total host access capacity.
  double network_utilization() const;
  double short_completion_ratio() const;
  /// Total RTOs (and SYN timeouts) across short flows.
  std::uint64_t short_flow_rtos() const;
  std::uint64_t short_flows_with_rto() const;
  std::uint64_t total_spurious_retransmits() const;
  /// CE marks set by all qdiscs in the network.
  std::uint64_t ecn_marked_packets() const;
  /// Peak queue occupancy (packets) over switch egress ports.
  std::uint64_t peak_switch_queue_packets() const;
  /// Peak switch queue occupancy with the time it was first reached.
  PeakQueue peak_switch_queue() const;
  /// The run's flight recorder, or null when tracing is off.
  TraceRecorder* trace() { return trace_.get(); }

 private:
  void build();
  void start_long_flows();
  void schedule_short_arrival(std::size_t role_idx);
  void start_short_flow(std::size_t role_idx);
  std::size_t pick_destination(std::size_t role_idx, std::size_t src_idx);
  void periodic_check();
  Host& host(std::size_t i) { return net_->host(i); }
  /// Flow list owned by `h`'s canonical host group (index 0 when the
  /// run is serial).  Only ever pushed from `h`'s own scheduler, which
  /// is the unique executor of that group at any granularity.
  std::vector<std::unique_ptr<ClientFlow>>& flows_for(const Host& h);

  ScenarioConfig cfg_;
  std::unique_ptr<TraceRecorder> trace_;  ///< before sim_: wired into it
  Simulation sim_;
  std::unique_ptr<FatTree> ft_;
  std::unique_ptr<DualHomedFatTree> dh_;
  Network* net_ = nullptr;
  Metrics metrics_;
  TransportConfig transport_;  ///< cfg_.transport with the oracle filled in
  TransportConfig long_transport_;  ///< transport for background flows
  std::unique_ptr<SinkFarm> sinks_;
  /// Flow ownership is sharded by canonical host group (granularity-
  /// invariant, so reap order — and every result byte — is identical at
  /// pod and edge decomposition): each group's events only ever push
  /// into their own list from the one domain that executes the group,
  /// the control thread reaps from all of them while workers are parked.
  std::vector<std::vector<std::unique_ptr<ClientFlow>>> flows_;
  std::vector<std::size_t> perm_;
  std::vector<std::size_t> long_hosts_;
  std::vector<std::size_t> short_hosts_;
  // Per short-host ("role") state, all parallel to short_hosts_: arrival
  // processes, size/hotspot RNG streams, and a fixed share of the total
  // short-flow budget.  Keeping these per-role (instead of shared
  // globals) removes every cross-domain interaction from the workload
  // generator, so arrivals in different pods can run concurrently.
  std::vector<PoissonArrivals> arrivals_;
  std::vector<Rng> size_rngs_;
  std::vector<Rng> hotspot_rngs_;
  std::vector<std::uint32_t> role_quota_;
  std::vector<std::uint32_t> shorts_by_role_;
  std::size_t domains_ = 1;
  std::size_t host_groups_ = 1;
  Time lookahead_ = Time::zero();
  unsigned workers_used_ = 0;
  EngineStats engine_stats_;
  Time end_time_;
  bool stopped_ = false;
  std::unique_ptr<TraceSampler> sampler_;  ///< periodic queue/sched snapshots
};

/// N-to-1 synchronized burst — the paper's objective (3), "tolerance to
/// sudden and high bursts of traffic".
struct IncastConfig {
  FatTreeConfig fat_tree{.k = 4, .oversubscription = 4};
  TransportConfig transport{};
  std::uint32_t senders = 32;
  std::uint64_t bytes = 70 * 1024;
  /// Background elephants into the same receiver (same transport as the
  /// shorts); they make the qdisc comparison bite: drop-tail lets them
  /// keep a standing queue the burst must fight through.  With elephants
  /// running the simulation stops once every short completed.
  std::uint32_t long_senders = 0;
  /// Delay before the burst starts (elephants start at t=0).  A warmup
  /// lets the elephants build their standing queue — and, under MMPTCP,
  /// finish the PS->MPTCP phase switch — so the burst meets the queue a
  /// real incast meets.  Zero starts everything together.
  Time short_start = Time::zero();
  Time check_interval = Time::millis(10);  ///< completion poll (elephants)
  std::uint64_t seed = 1;
  Time max_sim_time = Time::seconds(60);
  /// Flight recorder + component logger (see ScenarioConfig).
  TraceConfig trace{};
  Logger logger{};
  /// See ScenarioConfig::exact_stats.
  bool exact_stats = true;
};

/// Outcome of one incast run (all flow counters cover short flows only).
struct IncastResult {
  Summary fct_ms;
  std::uint64_t rtos = 0;
  std::uint64_t syn_timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  double completion_ratio = 0.0;
  Time makespan;  ///< last completion time
  /// Per-elephant goodput (Mb/s over each long flow's lifetime); empty
  /// when the run has no long senders.
  Summary long_goodput_mbps;
  std::uint64_t ecn_marked = 0;          ///< CE marks across all qdiscs
  std::uint64_t peak_queue_packets = 0;  ///< max occupancy over switch ports
  Time peak_queue_at;                    ///< when that peak was first reached
  /// Scheduler events the run executed.  Deterministic; specs divide it
  /// by wall time for the events_per_second timing sidecar.
  std::uint64_t events_executed = 0;
  /// Flight-recorder volume (zero when tracing was off).
  std::uint64_t trace_lines = 0;
  std::uint64_t trace_bytes = 0;
  /// Streaming FCT/budget sketches over completed shorts (always filled).
  FlowSketches short_sketches;
};

/// Runs the incast microbenchmark (receiver = host 0; senders spread over
/// the remaining racks, all starting at t = 0).
IncastResult run_incast(const IncastConfig& config);

}  // namespace mmptcp
