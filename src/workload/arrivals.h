#pragma once

// Flow arrival processes.  Short flows in the paper arrive "according to a
// Poisson process" per sender; PoissonArrivals produces the exponential
// inter-arrival gaps for one sender's stream.

#include "sim/time.h"
#include "util/rng.h"

namespace mmptcp {

/// Exponential inter-arrival generator (one per sending host).
class PoissonArrivals {
 public:
  /// `rate_per_sec` flows per second (> 0).
  PoissonArrivals(Rng rng, double rate_per_sec);

  /// Next inter-arrival gap.
  Time next_gap();

  double rate() const { return rate_; }

 private:
  Rng rng_;
  double rate_;
};

}  // namespace mmptcp
