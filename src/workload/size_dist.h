#pragma once

// Flow-size distributions.
//
// The paper's headline experiment uses fixed 70 KB shorts; the roadmap
// experiments ("a wide range of network scenarios ... network loads,
// traffic matrices") call for heavier-tailed mixes, so we also provide
// uniform, bounded-Pareto, and empirical-CDF distributions (with a
// web-search-like preset in the style of the DCTCP workload).

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace mmptcp {

/// Samples flow sizes in bytes.
class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;
  virtual std::uint64_t sample(Rng& rng) const = 0;
  /// Analytic or empirical mean (used to compute offered load).
  virtual double mean_bytes() const = 0;
};

/// Every flow has the same size.
class FixedSize final : public SizeDistribution {
 public:
  explicit FixedSize(std::uint64_t bytes);
  std::uint64_t sample(Rng& rng) const override;
  double mean_bytes() const override;

 private:
  std::uint64_t bytes_;
};

/// Uniform in [lo, hi].
class UniformSize final : public SizeDistribution {
 public:
  UniformSize(std::uint64_t lo, std::uint64_t hi);
  std::uint64_t sample(Rng& rng) const override;
  double mean_bytes() const override;

 private:
  std::uint64_t lo_, hi_;
};

/// Bounded Pareto with shape `alpha` on [lo, hi].
class BoundedParetoSize final : public SizeDistribution {
 public:
  BoundedParetoSize(double alpha, std::uint64_t lo, std::uint64_t hi);
  std::uint64_t sample(Rng& rng) const override;
  double mean_bytes() const override;

 private:
  double alpha_;
  double lo_, hi_;
};

/// Piecewise-linear inverse CDF over (probability, bytes) knots.
class EmpiricalSize final : public SizeDistribution {
 public:
  struct Knot {
    double cdf;           ///< in [0, 1], strictly increasing across knots
    std::uint64_t bytes;  ///< non-decreasing across knots
  };
  explicit EmpiricalSize(std::vector<Knot> knots);
  std::uint64_t sample(Rng& rng) const override;
  double mean_bytes() const override;

  /// Web-search-like heavy-tailed mix (most flows tiny, a few of many MB).
  static EmpiricalSize web_search();

 private:
  std::vector<Knot> knots_;
};

}  // namespace mmptcp
