#include "workload/traffic_matrix.h"

#include <numeric>

#include "util/check.h"

namespace mmptcp {

std::vector<std::size_t> permutation_matrix(Rng& rng, std::size_t n) {
  require(n >= 2, "a permutation matrix needs at least two hosts");
  std::vector<std::size_t> pi(n);
  std::iota(pi.begin(), pi.end(), 0);
  rng.shuffle(pi);
  // Repair fixed points by swapping with the next position (cyclically);
  // the neighbour cannot itself be a fixed point after the swap.
  for (std::size_t i = 0; i < n; ++i) {
    if (pi[i] == i) std::swap(pi[i], pi[(i + 1) % n]);
  }
  check(is_valid_permutation(pi), "permutation repair failed");
  return pi;
}

bool is_valid_permutation(const std::vector<std::size_t>& pi) {
  std::vector<bool> seen(pi.size(), false);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    if (pi[i] >= pi.size() || pi[i] == i || seen[pi[i]]) return false;
    seen[pi[i]] = true;
  }
  return true;
}

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t count) {
  require(count <= n, "cannot sample more than the population");
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  rng.shuffle(all);
  all.resize(count);
  return all;
}

}  // namespace mmptcp
