#include "workload/arrivals.h"

#include "util/check.h"

namespace mmptcp {

PoissonArrivals::PoissonArrivals(Rng rng, double rate_per_sec)
    : rng_(rng), rate_(rate_per_sec) {
  require(rate_per_sec > 0.0, "arrival rate must be positive");
}

Time PoissonArrivals::next_gap() {
  return Time::from_seconds(rng_.exponential(1.0 / rate_));
}

}  // namespace mmptcp
