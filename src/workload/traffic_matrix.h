#pragma once

// Traffic matrices.
//
// The paper's evaluation schedules every flow "based on a permutation
// traffic matrix": each host sends to exactly one other host and receives
// from exactly one.  We generate a uniform random permutation with no
// fixed points (a derangement-ish repair pass swaps any self-mapping with
// a neighbour), so no host talks to itself.

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace mmptcp {

/// Random permutation of {0..n-1} with no fixed points (n >= 2).
std::vector<std::size_t> permutation_matrix(Rng& rng, std::size_t n);

/// Validates the permutation-traffic-matrix invariants (bijection, no
/// self-loops); used by tests and by Scenario in debug runs.
bool is_valid_permutation(const std::vector<std::size_t>& pi);

/// Picks `count` distinct indices out of {0..n-1} (the "one third of the
/// servers run long flows" role assignment).
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t count);

}  // namespace mmptcp
