#include "workload/scenario.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "sim/engine.h"

namespace mmptcp {

Scenario::Scenario(ScenarioConfig config)
    : cfg_(std::move(config)),
      trace_(cfg_.trace.enabled()
                 ? std::make_unique<TraceRecorder>(cfg_.trace)
                 : nullptr),
      sim_(cfg_.seed, cfg_.logger) {
  if (trace_) sim_.set_trace(trace_.get(), trace_->channels());
  // exact_stats=false is the million-flow mode: retire completed shorts
  // so record memory is O(live flows) (see ScenarioConfig::exact_stats).
  if (!cfg_.exact_stats) metrics_.set_streaming(true);
  build();
  if (trace_ && (trace_->wants(kTraceQueue) || trace_->wants(kTraceSched))) {
    sampler_ = std::make_unique<TraceSampler>(sim_, *trace_, *net_);
    sampler_->start();
  }
}

Scenario::~Scenario() {
  // Flows hold demux registrations on hosts owned by the topology; drop
  // them first so teardown order is safe.
  for (auto& list : flows_) list.clear();
  sinks_.reset();
}

void Scenario::build() {
  // Decide the parallel decomposition before any node exists: domains
  // must be configured before ports are wired, flow shards before the
  // first flow starts.  FatTree runs always decompose (the window
  // schedule, and therefore every result byte, is then independent of
  // sim_threads); dual-homed stays serial until it grows a plan.
  if (!cfg_.dual_homed) {
    const FatTreeDomainPlan plan = FatTree::domain_plan(cfg_.fat_tree);
    if (plan.domains > 1) {
      sim_.configure_domains(plan.domains);
      // Shards (flow-id allocation) are per canonical host group so ids
      // are identical at every granularity; journals are per execution
      // domain because that is what a worker thread owns.
      metrics_.configure_shards(plan.host_groups, plan.domains);
      const std::uint32_t half = cfg_.fat_tree.k / 2;
      metrics_.set_group_of([half](Addr a) {
        return FatTreeAddr::pod(a) * half + FatTreeAddr::edge(a);
      });
      domains_ = plan.domains;
      host_groups_ = plan.host_groups;
      lookahead_ = plan.lookahead;
    }
  }
  if (domains_ == 1 && cfg_.sim_threads > 1) {
    std::fprintf(stderr,
                 "mmptcp: --sim-threads %u requested but the topology "
                 "yields no parallel decomposition (%s); running serial\n",
                 cfg_.sim_threads,
                 cfg_.dual_homed ? "dual-homed" : "zero lookahead");
  }
  flows_.resize(host_groups_);
  if (cfg_.dual_homed) {
    dh_ = std::make_unique<DualHomedFatTree>(sim_, cfg_.dual);
    net_ = &dh_->network();
  } else {
    ft_ = std::make_unique<FatTree>(sim_, cfg_.fat_tree);
    net_ = &ft_->network();
  }
  if (domains_ > 1) {
    // The plan's lookahead is a promise about the network we then
    // build: verify it against the actual wiring.  A cross-domain link
    // shorter than the lookahead would break conservative causality,
    // and the runtime guard (schedule_at's at >= now_) is a dcheck
    // compiled out of release builds — so fail loudly here instead of
    // corrupting event order later.
    check(net_->cross_domain_channel_count() > 0,
          "domain decomposition produced no cross-domain channels");
    check(lookahead_ <= net_->min_cross_domain_delay(),
          "domain lookahead exceeds the built network's minimum "
          "cross-domain delay");
  }
  transport_ = cfg_.transport;
  transport_.oracle = &oracle();
  transport_.server_port = cfg_.port;
  long_transport_ = cfg_.long_transport.value_or(cfg_.transport);
  long_transport_.oracle = &oracle();
  long_transport_.server_port = cfg_.port;

  sinks_ = std::make_unique<SinkFarm>(sim_, metrics_, *net_, cfg_.port,
                                      transport_.tcp);

  const std::size_t n = net_->host_count();
  require(n >= 2, "scenario needs at least two hosts");
  Rng topo_rng = sim_.rng().fork();
  perm_ = permutation_matrix(topo_rng, n);

  const auto long_count = static_cast<std::size_t>(
      cfg_.long_host_fraction * static_cast<double>(n));
  long_hosts_ = sample_without_replacement(topo_rng, n, long_count);
  std::vector<bool> is_long(n, false);
  for (std::size_t h : long_hosts_) is_long[h] = true;
  for (std::size_t h = 0; h < n; ++h) {
    if (!is_long[h]) short_hosts_.push_back(h);
  }

  const std::size_t roles = short_hosts_.size();
  arrivals_.reserve(roles);
  size_rngs_.reserve(roles);
  hotspot_rngs_.reserve(roles);
  for (std::size_t i = 0; i < roles; ++i) {
    arrivals_.emplace_back(sim_.rng().fork(), cfg_.short_rate_per_host);
    size_rngs_.push_back(sim_.rng().fork());
    hotspot_rngs_.push_back(sim_.rng().fork());
  }
  // Fixed per-role share of the short-flow budget.  A shared countdown
  // would make "who gets the last slot" depend on how concurrently
  // executing pods interleave; fixed quotas keep the workload a pure
  // function of the seed.
  role_quota_.assign(roles, 0);
  shorts_by_role_.assign(roles, 0);
  if (roles > 0) {
    const std::uint32_t base =
        cfg_.short_flow_count / static_cast<std::uint32_t>(roles);
    const std::uint32_t extra =
        cfg_.short_flow_count % static_cast<std::uint32_t>(roles);
    for (std::size_t i = 0; i < roles; ++i) {
      role_quota_[i] = base + (i < extra ? 1u : 0u);
    }
  }
}

std::vector<std::unique_ptr<ClientFlow>>& Scenario::flows_for(const Host& h) {
  const std::size_t g = h.canonical_domain();
  return flows_[g < flows_.size() ? g : 0];
}

const PathOracle& Scenario::oracle() const {
  if (ft_) return *ft_;
  return *dh_;
}

void Scenario::run() {
  if (cfg_.start_long_flows && !long_hosts_.empty()) start_long_flows();
  for (std::size_t i = 0; i < short_hosts_.size(); ++i) {
    schedule_short_arrival(i);
  }
  sim_.control_scheduler().schedule(cfg_.check_interval,
                                    [this] { periodic_check(); });
  // Tracing forces one worker: the windowed schedule is identical either
  // way, so trace and main results stay byte-equal to any thread count.
  // sim_threads == 0 means auto: one worker per hardware thread, clamped
  // to the domain count (more workers than domains can never run).
  unsigned workers = trace_ ? 1u : cfg_.sim_threads;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  if (domains_ > 1 && workers > domains_) {
    std::fprintf(stderr,
                 "mmptcp: clamping %u workers to %zu domains (use a finer "
                 "--sim-domains granularity to engage more threads)\n",
                 workers, domains_);
  }
  Engine engine(sim_, lookahead_, workers);
  engine.set_barrier_hook([this] {
    net_->flush_cross_domain();
    metrics_.flush_journals();
  });
  engine.run_until(cfg_.max_sim_time);
  end_time_ = sim_.now();
  workers_used_ = engine.workers();
  engine_stats_ = engine.stats();
}

void Scenario::start_long_flows() {
  Rng stagger = sim_.rng().fork();
  for (std::size_t h : long_hosts_) {
    const Time at = Time::nanos(static_cast<std::int64_t>(
        stagger.uniform(static_cast<std::uint64_t>(
            std::max<std::int64_t>(cfg_.long_start_spread.ns(), 1)))));
    sim_.domain_scheduler(host(h).domain()).schedule_at(at, [this, h] {
      flows_for(host(h)).push_back(std::make_unique<ClientFlow>(
          sim_, metrics_, host(h), host(perm_[h]).addr(), long_transport_,
          ClientFlow::kLongFlow, /*long_flow=*/true));
    });
  }
}

void Scenario::schedule_short_arrival(std::size_t role_idx) {
  if (shorts_by_role_[role_idx] >= role_quota_[role_idx]) return;
  const Time gap = arrivals_[role_idx].next_gap();
  // The arrival fires in the source host's domain, so the whole chain
  // (draw gap -> start flow -> draw next gap) is domain-local.
  sim_.domain_scheduler(host(short_hosts_[role_idx]).domain())
      .schedule(gap, [this, role_idx] {
        if (stopped_) return;
        start_short_flow(role_idx);
        schedule_short_arrival(role_idx);
      });
}

void Scenario::start_short_flow(std::size_t role_idx) {
  ++shorts_by_role_[role_idx];
  const std::size_t src_idx = short_hosts_[role_idx];
  const std::size_t dst = pick_destination(role_idx, src_idx);
  const std::uint64_t bytes =
      cfg_.short_sizes ? cfg_.short_sizes->sample(size_rngs_[role_idx])
                       : cfg_.short_flow_bytes;
  flows_for(host(src_idx)).push_back(std::make_unique<ClientFlow>(
      sim_, metrics_, host(src_idx), host(dst).addr(), transport_, bytes,
      /*long_flow=*/false));
}

std::size_t Scenario::pick_destination(std::size_t role_idx,
                                       std::size_t src_idx) {
  Rng& rng = hotspot_rngs_[role_idx];
  if (cfg_.hotspot_fraction > 0.0 && rng.bernoulli(cfg_.hotspot_fraction)) {
    // Hosts are pod-major, so rack (0,0) is the index prefix.
    const std::size_t rack =
        ft_ ? ft_->hosts_per_edge()
            : dh_->hosts_per_pair();
    std::size_t dst = rng.uniform(rack);
    if (dst == src_idx) dst = (dst + 1) % net_->host_count();
    return dst;
  }
  return perm_[src_idx];
}

void Scenario::periodic_check() {
  // Runs on the control scheduler: the engine executes the control
  // window before (and never concurrently with) the domain windows, so
  // reaping flows and recycling records here is race-free.  Metric
  // journals flushed at the last barrier bound what is visible, which
  // can delay the stop decision by at most one lookahead window.
  if (stopped_) return;
  const Time gc_cutoff = sim_.now() - cfg_.server_linger;
  sinks_->gc(gc_cutoff);
  for (auto& list : flows_) {
    std::erase_if(list, [this](const std::unique_ptr<ClientFlow>& f) {
      const FlowRecord& rec = metrics_.record(f->flow_id());
      const bool reap = !rec.long_flow && rec.is_complete() && f->finished();
      // Streaming mode: fold the finished short into the retired
      // aggregates now (the client side is done); the slot itself is
      // recycled below only after the server endpoint was GC'd.
      if (reap && metrics_.streaming() && !rec.retired) {
        metrics_.retire(f->flow_id());
      }
      return reap;
    });
  }
  if (metrics_.streaming()) metrics_.recycle_before(gc_cutoff);
  // O(1) stop condition: every requested short started and completed
  // (started/completed counters include retired flows by construction).
  if (shorts_started() >= cfg_.short_flow_count &&
      metrics_.short_flows_started() >= cfg_.short_flow_count &&
      metrics_.short_flows_completed() == metrics_.short_flows_started()) {
    stopped_ = true;
    sim_.scheduler().stop();
    return;
  }
  sim_.scheduler().schedule(cfg_.check_interval, [this] { periodic_check(); });
}

Summary Scenario::short_fct_ms() const {
  return metrics_.short_flow_fct_ms(cfg_.transport.protocol);
}

Summary Scenario::long_goodput_mbps() const {
  return metrics_.long_flow_goodput_mbps(long_transport_.protocol,
                                         end_time_);
}

std::map<LinkLayer, LayerStats> Scenario::layer_stats() const {
  return collect_layer_stats(*net_);
}

double Scenario::network_utilization() const {
  const double secs = end_time_.to_seconds();
  if (secs <= 0.0) return 0.0;
  std::uint64_t delivered = metrics_.retired().delivered_bytes;
  for (const auto* rec : metrics_.flows()) delivered += rec->delivered_bytes;
  // Total host access capacity (counts every NIC, so dual-homed hosts
  // contribute twice).
  double capacity = 0.0;
  net_->for_each_port([&capacity](const Node& node, const Port& port) {
    if (dynamic_cast<const Host*>(&node) != nullptr) {
      capacity += static_cast<double>(port.rate_bps());
    }
  });
  if (capacity <= 0.0) return 0.0;
  return static_cast<double>(delivered) * 8.0 / (capacity * secs);
}

double Scenario::short_completion_ratio() const {
  return metrics_.short_flow_completion_ratio(cfg_.transport.protocol);
}

std::uint64_t Scenario::short_flow_rtos() const {
  return metrics_.retired().rtos +
         metrics_.total(
             [](const FlowRecord& r) {
               return std::uint64_t(r.rto_count) + r.syn_timeouts;
             },
             [](const FlowRecord& r) { return !r.long_flow; });
}

std::uint64_t Scenario::short_flows_with_rto() const {
  return metrics_.retired().flows_with_rto +
         metrics_.total(
             [](const FlowRecord& r) {
               return (r.rto_count + r.syn_timeouts) > 0 ? 1u : 0u;
             },
             [](const FlowRecord& r) { return !r.long_flow; });
}

std::uint64_t Scenario::total_spurious_retransmits() const {
  return metrics_.retired().spurious +
         metrics_.total(
             [](const FlowRecord& r) { return r.spurious_retransmits; });
}

std::uint64_t Scenario::ecn_marked_packets() const {
  return total_marked_packets(*net_);
}

std::uint64_t Scenario::peak_switch_queue_packets() const {
  return mmptcp::peak_switch_queue_packets(*net_);
}

PeakQueue Scenario::peak_switch_queue() const {
  return mmptcp::peak_switch_queue(*net_);
}

namespace {

/// Stops `sim` once all `expected_shorts` completed (elephants never do).
void poll_incast_done(Simulation& sim, const Metrics& metrics,
                      std::uint32_t expected_shorts, Time interval) {
  std::uint32_t done = 0;
  for (const auto* rec : metrics.flows()) {
    if (!rec->long_flow && rec->is_complete()) ++done;
  }
  if (done >= expected_shorts) {
    sim.scheduler().stop();
    return;
  }
  sim.scheduler().schedule(interval, [&sim, &metrics, expected_shorts,
                                      interval] {
    poll_incast_done(sim, metrics, expected_shorts, interval);
  });
}

}  // namespace

IncastResult run_incast(const IncastConfig& config) {
  Simulation sim(config.seed, config.logger);
  std::unique_ptr<TraceRecorder> trace;
  if (config.trace.enabled()) {
    trace = std::make_unique<TraceRecorder>(config.trace);
    sim.set_trace(trace.get(), trace->channels());
  }
  FatTree ft(sim, config.fat_tree);
  Metrics metrics;
  std::unique_ptr<TraceSampler> sampler;
  if (trace && (trace->wants(kTraceQueue) || trace->wants(kTraceSched))) {
    sampler = std::make_unique<TraceSampler>(sim, *trace, ft.network());
    sampler->start();
  }
  require(config.senders + config.long_senders + ft.hosts_per_edge() <=
              ft.host_count(),
          "incast needs enough hosts outside the receiver's rack");

  TransportConfig transport = config.transport;
  transport.oracle = &ft;

  Sink sink(sim, metrics, ft.host(0), transport.server_port, transport.tcp);
  const Addr receiver = ft.host(0).addr();

  std::vector<std::unique_ptr<ClientFlow>> flows;
  // Senders start after the hosts under the receiver's rack, so every
  // flow crosses the fabric and converges on one access link.
  const std::size_t first = ft.hosts_per_edge();
  const auto start_shorts = [&] {
    for (std::uint32_t i = 0; i < config.senders; ++i) {
      Host& src = ft.host(first + i);
      flows.push_back(std::make_unique<ClientFlow>(
          sim, metrics, src, receiver, transport, config.bytes,
          /*long_flow=*/false));
    }
  };
  if (config.short_start.ns() > 0) {
    sim.scheduler().schedule_at(config.short_start, start_shorts);
  } else {
    start_shorts();
  }
  // Background elephants occupy the hosts after the burst senders.
  for (std::uint32_t i = 0; i < config.long_senders; ++i) {
    Host& src = ft.host(first + config.senders + i);
    flows.push_back(std::make_unique<ClientFlow>(
        sim, metrics, src, receiver, transport, ClientFlow::kLongFlow,
        /*long_flow=*/true));
  }
  if (config.long_senders > 0) {
    sim.scheduler().schedule(config.check_interval, [&] {
      poll_incast_done(sim, metrics, config.senders, config.check_interval);
    });
  }
  sim.scheduler().run_until(config.max_sim_time);

  IncastResult result;
  if (config.exact_stats) {
    result.fct_ms = metrics.short_flow_fct_ms(transport.protocol);
  }
  result.short_sketches = metrics.short_flow_sketches(transport.protocol);
  Time last = Time::zero();
  for (const auto* rec : metrics.flows()) {
    if (rec->long_flow) continue;
    result.rtos += rec->rto_count;
    result.syn_timeouts += rec->syn_timeouts;
    result.fast_retransmits += rec->fast_retransmits;
    if (rec->is_complete()) last = std::max(last, rec->completed_at);
  }
  result.completion_ratio =
      metrics.short_flow_completion_ratio(transport.protocol);
  result.makespan = last;
  result.long_goodput_mbps =
      metrics.long_flow_goodput_mbps(transport.protocol, sim.now());
  result.ecn_marked = total_marked_packets(ft.network());
  const PeakQueue peak = peak_switch_queue(ft.network());
  result.peak_queue_packets = peak.packets;
  result.peak_queue_at = peak.at;
  result.events_executed = sim.scheduler().executed();
  if (trace) {
    trace->close();
    result.trace_lines = trace->lines();
    result.trace_bytes = trace->bytes_written();
  }
  return result;
}

}  // namespace mmptcp
