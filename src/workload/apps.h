#pragma once

// Application-layer helpers shared by scenarios, examples and benches.

#include <memory>
#include <vector>

#include "core/transport_factory.h"
#include "topo/network.h"

namespace mmptcp {

/// Installs a Sink on every host of a network and owns them; provides
/// garbage collection of long-finished server endpoints so 100k-flow runs
/// do not accumulate dead state.
class SinkFarm {
 public:
  SinkFarm(Simulation& sim, Metrics& metrics, Network& net,
           std::uint16_t port, TcpConfig server_tcp);

  std::size_t total_accepted() const;

  /// Destroys server endpoints whose flow completed before `before`.
  void gc(Time before);

 private:
  Metrics& metrics_;
  std::vector<std::unique_ptr<Sink>> sinks_;
};

}  // namespace mmptcp
