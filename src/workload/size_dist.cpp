#include "workload/size_dist.h"

#include <cmath>

#include "util/check.h"

namespace mmptcp {

FixedSize::FixedSize(std::uint64_t bytes) : bytes_(bytes) {
  require(bytes > 0, "flow size must be positive");
}
std::uint64_t FixedSize::sample(Rng& /*rng*/) const { return bytes_; }
double FixedSize::mean_bytes() const { return static_cast<double>(bytes_); }

UniformSize::UniformSize(std::uint64_t lo, std::uint64_t hi)
    : lo_(lo), hi_(hi) {
  require(lo > 0 && lo <= hi, "need 0 < lo <= hi");
}
std::uint64_t UniformSize::sample(Rng& rng) const {
  return lo_ + rng.uniform(hi_ - lo_ + 1);
}
double UniformSize::mean_bytes() const {
  return (static_cast<double>(lo_) + static_cast<double>(hi_)) / 2.0;
}

BoundedParetoSize::BoundedParetoSize(double alpha, std::uint64_t lo,
                                     std::uint64_t hi)
    : alpha_(alpha), lo_(static_cast<double>(lo)),
      hi_(static_cast<double>(hi)) {
  require(alpha > 0.0, "Pareto shape must be positive");
  require(lo > 0 && lo < hi, "need 0 < lo < hi");
}

std::uint64_t BoundedParetoSize::sample(Rng& rng) const {
  // Inverse transform for the bounded Pareto CDF.
  const double u = rng.uniform01();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  return static_cast<std::uint64_t>(x);
}

double BoundedParetoSize::mean_bytes() const {
  if (alpha_ == 1.0) {
    return lo_ * hi_ / (hi_ - lo_) * std::log(hi_ / lo_);
  }
  const double la = std::pow(lo_, alpha_);
  return la / (1.0 - std::pow(lo_ / hi_, alpha_)) * alpha_ /
         (alpha_ - 1.0) * (1.0 / std::pow(lo_, alpha_ - 1.0) -
                           1.0 / std::pow(hi_, alpha_ - 1.0));
}

EmpiricalSize::EmpiricalSize(std::vector<Knot> knots)
    : knots_(std::move(knots)) {
  require(knots_.size() >= 2, "empirical CDF needs at least two knots");
  require(knots_.front().cdf == 0.0 && knots_.back().cdf == 1.0,
          "empirical CDF must span [0, 1]");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    require(knots_[i].cdf > knots_[i - 1].cdf,
            "empirical CDF must be strictly increasing");
    require(knots_[i].bytes >= knots_[i - 1].bytes,
            "empirical CDF bytes must be non-decreasing");
  }
}

std::uint64_t EmpiricalSize::sample(Rng& rng) const {
  const double u = rng.uniform01();
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (u <= knots_[i].cdf) {
      const auto& a = knots_[i - 1];
      const auto& b = knots_[i];
      const double frac = (u - a.cdf) / (b.cdf - a.cdf);
      const double bytes = static_cast<double>(a.bytes) +
                           frac * static_cast<double>(b.bytes - a.bytes);
      return static_cast<std::uint64_t>(std::max(bytes, 1.0));
    }
  }
  return knots_.back().bytes;
}

double EmpiricalSize::mean_bytes() const {
  double mean = 0.0;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    const auto& a = knots_[i - 1];
    const auto& b = knots_[i];
    mean += (b.cdf - a.cdf) *
            (static_cast<double>(a.bytes) + static_cast<double>(b.bytes)) /
            2.0;
  }
  return mean;
}

EmpiricalSize EmpiricalSize::web_search() {
  // In the spirit of the DCTCP web-search workload: ~50% of flows under
  // 10 KB, a long tail reaching tens of MB.
  return EmpiricalSize({{0.0, 1 * 1024},
                        {0.15, 5 * 1024},
                        {0.50, 10 * 1024},
                        {0.70, 70 * 1024},
                        {0.85, 300 * 1024},
                        {0.95, 2 * 1024 * 1024},
                        {0.99, 10 * 1024 * 1024},
                        {1.0, 30 * 1024 * 1024}});
}

}  // namespace mmptcp
