#include "workload/apps.h"

namespace mmptcp {

SinkFarm::SinkFarm(Simulation& sim, Metrics& metrics, Network& net,
                   std::uint16_t port, TcpConfig server_tcp)
    : metrics_(metrics) {
  for (std::size_t i = 0; i < net.host_count(); ++i) {
    sinks_.push_back(std::make_unique<Sink>(sim, metrics, net.host(i), port,
                                            server_tcp));
  }
}

std::size_t SinkFarm::total_accepted() const {
  std::size_t total = 0;
  for (const auto& s : sinks_) total += s->accepted();
  return total;
}

void SinkFarm::gc(Time before) {
  for (const auto& s : sinks_) s->gc(before);
}

}  // namespace mmptcp
