#pragma once

// The flight recorder: streams typed trace records as JSONL.
//
// One recorder per run, writing one file: a header line with the run's
// provenance, then one object per record with a fixed field order per
// channel.  Records stream straight to the file (O(1) memory however long
// the run), timestamps are integer simulated nanoseconds and doubles use
// the deterministic result-sink rendering, so the bytes are identical for
// the same run at any worker-thread count and on any host.
//
// Record shapes (field order is part of the schema):
//   header {"kind":"trace","schema_version":1,"experiment","run","seed",
//           "channels","interval_ns"}
//   queue  {"t","ch":"queue","port","depth","bytes","marks","drops"}
//          sampler snapshot, emitted only when a field changed
//   queue  {"t","ch":"queue","port","event":"drop"|"mark","depth"}
//          event-driven edge, emitted at the packet that caused it
//   cwnd   {"t","ch":"cwnd","flow","sf","event","cwnd","ssthresh",
//           ["alpha",]"srtt_ns"}   sf is -1 for single-path sockets;
//          alpha appears only for ECN-reacting (DCTCP) controllers
//   phase  {"t","ch":"phase","flow","event":"switch","ps_bytes"}
//   retx   {"t","ch":"retx","flow","sf","event":"fast_rtx"|"rto"|
//           "syn_timeout"}
//   sched  {"t","ch":"sched","executed","pending","wheel","heap"}

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "trace/trace.h"

namespace mmptcp {

/// Writes one run's trace stream; constructed only when tracing is on.
class TraceRecorder {
 public:
  /// Opens config.path and writes the header line; throws ConfigError
  /// when the file cannot be created.
  explicit TraceRecorder(const TraceConfig& config);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  std::uint32_t channels() const { return config_.channels; }
  bool wants(TraceChannel channel) const {
    return (config_.channels & channel) != 0;
  }
  Time interval() const { return config_.interval; }

  // ---- emitters (caller already checked the channel is enabled) ----
  void queue_sample(Time t, const std::string& port, std::uint64_t depth,
                    std::uint64_t bytes, std::uint64_t marks,
                    std::uint64_t drops);
  void queue_event(Time t, const std::string& port, const char* event,
                   std::uint64_t depth);
  void cwnd_sample(Time t, std::uint32_t flow, int subflow, const char* event,
                   std::uint64_t cwnd, std::uint64_t ssthresh,
                   std::optional<double> alpha, Time srtt);
  void phase_switch(Time t, std::uint32_t flow, std::uint64_t ps_bytes);
  void retx_event(Time t, std::uint32_t flow, int subflow, const char* kind);
  void sched_sample(Time t, std::uint64_t executed, std::size_t wheel,
                    std::size_t heap);

  // ---- run telemetry (read after the run for the timing sidecar) ----
  std::uint64_t lines() const { return lines_; }
  std::uint64_t bytes_written() const { return bytes_; }

  /// Flushes and closes the stream (idempotent; the destructor calls it).
  void close();

 private:
  void emit(const std::string& line);

  TraceConfig config_;
  std::FILE* file_ = nullptr;
  std::uint64_t lines_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace mmptcp
