#pragma once

// Flight-recorder channel taxonomy and configuration.
//
// The trace subsystem is a typed, channel-based event recorder: components
// emit structured samples (queue depth, cwnd, phase switches, ...) onto
// named channels, and a run enables any subset of them.  The design goal
// is near-zero cost when disabled: Simulation hands every component a
// per-channel TraceRecorder pointer at construction — nullptr unless that
// channel is on — so the hot path is one branch on a cached pointer, and
// a build without --trace executes no formatting, no allocation and no
// virtual dispatch.  When enabled, output is a JSONL stream whose bytes
// are fully deterministic (driven by simulated time and event order, never
// by the host or the worker-thread count).

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace mmptcp {

/// One trace channel per observable subsystem; values are bitmask bits so
/// a run's selection is a plain uint32 mask.
enum TraceChannel : std::uint32_t {
  kTraceQueue = 1u << 0,  ///< per-port queue depth/bytes, CE marks, drops
  kTraceCwnd = 1u << 1,   ///< per-(sub)flow cwnd/ssthresh/alpha/RTT samples
  kTracePhase = 1u << 2,  ///< MMPTCP PS -> MPTCP phase switches
  kTraceRetx = 1u << 3,   ///< RTO / fast-retransmit / SYN-timeout events
  kTraceSched = 1u << 4,  ///< scheduler self-telemetry (executed, occupancy)
};

inline constexpr std::uint32_t kTraceAllChannels =
    kTraceQueue | kTraceCwnd | kTracePhase | kTraceRetx | kTraceSched;

/// Parses a comma list of channel names ("queue,cwnd,sched") or "all";
/// throws ConfigError on unknown names or an empty selection.
std::uint32_t parse_trace_channels(const std::string& text);

/// Canonical rendering of a channel mask ("queue,cwnd"); "" for 0.
std::string trace_channels_to_string(std::uint32_t mask);

/// Everything one run's recorder needs.  enabled() is the master switch:
/// a default-constructed config (no channels, no path) records nothing.
struct TraceConfig {
  std::uint32_t channels = 0;       ///< TraceChannel mask; 0 = off
  Time interval = Time::millis(1);  ///< periodic sampler tick
  std::string path;                 ///< output JSONL file; "" = off
  // Run provenance, echoed into the stream header line.
  std::string experiment;
  std::string run_id;
  std::uint64_t seed = 0;

  bool enabled() const { return channels != 0 && !path.empty(); }
};

}  // namespace mmptcp
