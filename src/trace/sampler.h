#pragma once

// Periodic trace sampler: a self-rescheduling scheduler event that
// snapshots switch egress queues (queue channel) and the scheduler's own
// counters (sched channel) every recorder interval.
//
// Two properties keep it honest:
//  * read-only — it touches no component state and draws no randomness,
//    so enabling it cannot perturb the simulated physics (the main result
//    JSON of a traced run is byte-identical to the untraced run);
//  * delta-compressed — a queue line is emitted only when the port's
//    depth/bytes/marks/drops changed since the last tick, so an idle
//    fabric costs near-nothing in trace volume.
//
// The sampler stops rescheduling once it is the only pending event: at
// that point nothing can ever change again, the run is effectively over,
// and re-arming would only spin the clock to max_sim_time.

#include <cstdint>
#include <vector>

#include "sim/simulation.h"
#include "topo/network.h"
#include "trace/recorder.h"

namespace mmptcp {

/// Owns the periodic sampling loop of one traced run.
class TraceSampler {
 public:
  /// Snapshots switch egress ports of `net` (host NICs are unbounded and
  /// would swamp the queue channel) into `recorder`.
  TraceSampler(Simulation& sim, TraceRecorder& recorder, const Network& net);

  TraceSampler(const TraceSampler&) = delete;
  TraceSampler& operator=(const TraceSampler&) = delete;

  /// Schedules the first tick one interval from now.  The sampler must
  /// outlive the scheduler run (pending ticks capture `this`).
  void start();

 private:
  struct PortState {
    const Port* port = nullptr;
    std::uint64_t depth = 0;
    std::uint64_t bytes = 0;
    std::uint64_t marks = 0;
    std::uint64_t drops = 0;
    bool primed = false;  ///< first tick always emits a baseline line
  };

  void tick();

  Simulation& sim_;
  TraceRecorder& recorder_;
  std::vector<PortState> ports_;  ///< creation order: deterministic
};

}  // namespace mmptcp
