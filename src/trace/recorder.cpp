#include "trace/recorder.h"

// The result sink's writer already guarantees deterministic bytes (fixed
// key order, canonical number rendering); trace lines reuse it so both
// output families share one formatting contract.
#include "exp/json.h"
#include "util/check.h"

namespace mmptcp {

using exp::JsonWriter;

TraceRecorder::TraceRecorder(const TraceConfig& config) : config_(config) {
  require(config_.enabled(),
          "TraceRecorder needs at least one channel and an output path");
  file_ = std::fopen(config_.path.c_str(), "w");
  require(file_ != nullptr,
          "cannot open trace file " + config_.path + " for writing");
  JsonWriter w;
  w.begin_object();
  w.key("kind").value("trace");
  w.key("schema_version").value(std::uint64_t{1});
  w.key("experiment").value(config_.experiment);
  w.key("run").value(config_.run_id);
  w.key("seed").value(config_.seed);
  w.key("channels").value(trace_channels_to_string(config_.channels));
  w.key("interval_ns").value(std::int64_t{config_.interval.ns()});
  w.end_object();
  emit(w.str());
}

TraceRecorder::~TraceRecorder() { close(); }

void TraceRecorder::close() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
}

void TraceRecorder::emit(const std::string& line) {
  check(file_ != nullptr, "trace emit after close");
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
  bytes_ += line.size() + 1;
}

void TraceRecorder::queue_sample(Time t, const std::string& port,
                                 std::uint64_t depth, std::uint64_t bytes,
                                 std::uint64_t marks, std::uint64_t drops) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value(std::int64_t{t.ns()});
  w.key("ch").value("queue");
  w.key("port").value(port);
  w.key("depth").value(depth);
  w.key("bytes").value(bytes);
  w.key("marks").value(marks);
  w.key("drops").value(drops);
  w.end_object();
  emit(w.str());
}

void TraceRecorder::queue_event(Time t, const std::string& port,
                                const char* event, std::uint64_t depth) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value(std::int64_t{t.ns()});
  w.key("ch").value("queue");
  w.key("port").value(port);
  w.key("event").value(event);
  w.key("depth").value(depth);
  w.end_object();
  emit(w.str());
}

void TraceRecorder::cwnd_sample(Time t, std::uint32_t flow, int subflow,
                                const char* event, std::uint64_t cwnd,
                                std::uint64_t ssthresh,
                                std::optional<double> alpha, Time srtt) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value(std::int64_t{t.ns()});
  w.key("ch").value("cwnd");
  w.key("flow").value(std::uint64_t{flow});
  w.key("sf").value(std::int64_t{subflow});
  w.key("event").value(event);
  w.key("cwnd").value(cwnd);
  w.key("ssthresh").value(ssthresh);
  if (alpha.has_value()) w.key("alpha").value(*alpha);
  w.key("srtt_ns").value(std::int64_t{srtt.ns()});
  w.end_object();
  emit(w.str());
}

void TraceRecorder::phase_switch(Time t, std::uint32_t flow,
                                 std::uint64_t ps_bytes) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value(std::int64_t{t.ns()});
  w.key("ch").value("phase");
  w.key("flow").value(std::uint64_t{flow});
  w.key("event").value("switch");
  w.key("ps_bytes").value(ps_bytes);
  w.end_object();
  emit(w.str());
}

void TraceRecorder::retx_event(Time t, std::uint32_t flow, int subflow,
                               const char* kind) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value(std::int64_t{t.ns()});
  w.key("ch").value("retx");
  w.key("flow").value(std::uint64_t{flow});
  w.key("sf").value(std::int64_t{subflow});
  w.key("event").value(kind);
  w.end_object();
  emit(w.str());
}

void TraceRecorder::sched_sample(Time t, std::uint64_t executed,
                                 std::size_t wheel, std::size_t heap) {
  JsonWriter w;
  w.begin_object();
  w.key("t").value(std::int64_t{t.ns()});
  w.key("ch").value("sched");
  w.key("executed").value(executed);
  w.key("pending").value(std::uint64_t{wheel + heap});
  w.key("wheel").value(std::uint64_t{wheel});
  w.key("heap").value(std::uint64_t{heap});
  w.end_object();
  emit(w.str());
}

}  // namespace mmptcp
