#include "trace/trace.h"

#include "util/check.h"

namespace mmptcp {

namespace {

struct ChannelName {
  const char* name;
  TraceChannel channel;
};

// Declaration order is the canonical rendering order.
constexpr ChannelName kChannelNames[] = {
    {"queue", kTraceQueue}, {"cwnd", kTraceCwnd},   {"phase", kTracePhase},
    {"retx", kTraceRetx},   {"sched", kTraceSched},
};

}  // namespace

std::uint32_t parse_trace_channels(const std::string& text) {
  std::uint32_t mask = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string item = text.substr(start, end - start);
    if (item == "all") {
      mask |= kTraceAllChannels;
    } else {
      bool found = false;
      for (const ChannelName& cn : kChannelNames) {
        if (item == cn.name) {
          mask |= cn.channel;
          found = true;
          break;
        }
      }
      if (!found) {
        throw ConfigError("unknown trace channel '" + item +
                          "' (valid: queue, cwnd, phase, retx, sched, all)");
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  require(mask != 0, "empty trace channel list");
  return mask;
}

std::string trace_channels_to_string(std::uint32_t mask) {
  std::string out;
  for (const ChannelName& cn : kChannelNames) {
    if ((mask & cn.channel) == 0) continue;
    if (!out.empty()) out += ',';
    out += cn.name;
  }
  return out;
}

}  // namespace mmptcp
