#include "trace/sampler.h"

#include "net/link.h"
#include "net/switch.h"

namespace mmptcp {

TraceSampler::TraceSampler(Simulation& sim, TraceRecorder& recorder,
                           const Network& net)
    : sim_(sim), recorder_(recorder) {
  if (!recorder_.wants(kTraceQueue)) return;
  net.for_each_port([this](const Node& node, const Port& port) {
    if (dynamic_cast<const Switch*>(&node) == nullptr) return;
    PortState state;
    state.port = &port;
    ports_.push_back(state);
  });
}

void TraceSampler::start() {
  sim_.scheduler().schedule(recorder_.interval(), [this] { tick(); });
}

void TraceSampler::tick() {
  const Time now = sim_.now();
  for (PortState& state : ports_) {
    const Qdisc& q = state.port->qdisc();
    const std::uint64_t depth = q.size_packets();
    const std::uint64_t bytes = q.size_bytes();
    const std::uint64_t marks = q.marked_packets();
    const std::uint64_t drops = state.port->counters().dropped_packets;
    if (state.primed && depth == state.depth && bytes == state.bytes &&
        marks == state.marks && drops == state.drops) {
      continue;
    }
    state.depth = depth;
    state.bytes = bytes;
    state.marks = marks;
    state.drops = drops;
    state.primed = true;
    recorder_.queue_sample(now, state.port->name(), depth, bytes, marks,
                           drops);
  }
  if (recorder_.wants(kTraceSched)) {
    const Scheduler& sched = sim_.scheduler();
    recorder_.sched_sample(now, sched.executed(), sched.wheel_pending(),
                           sched.heap_pending());
  }
  // pending() excludes the tick being executed: zero means the sampler
  // was the last live event and the simulation is quiescent for good.
  if (sim_.scheduler().pending() > 0) {
    sim_.scheduler().schedule(recorder_.interval(), [this] { tick(); });
  }
}

}  // namespace mmptcp
